file(REMOVE_RECURSE
  "CMakeFiles/revocation_workflow.dir/revocation_workflow.cpp.o"
  "CMakeFiles/revocation_workflow.dir/revocation_workflow.cpp.o.d"
  "revocation_workflow"
  "revocation_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revocation_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
