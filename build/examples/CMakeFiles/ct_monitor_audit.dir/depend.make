# Empty dependencies file for ct_monitor_audit.
# This may be replaced when dependencies are built.
