file(REMOVE_RECURSE
  "CMakeFiles/ct_monitor_audit.dir/ct_monitor_audit.cpp.o"
  "CMakeFiles/ct_monitor_audit.dir/ct_monitor_audit.cpp.o.d"
  "ct_monitor_audit"
  "ct_monitor_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_monitor_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
