# Empty compiler generated dependencies file for bench_fig2_trend.
# This may be replaced when dependencies are built.
