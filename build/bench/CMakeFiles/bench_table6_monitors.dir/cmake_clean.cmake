file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_monitors.dir/bench_table6_monitors.cc.o"
  "CMakeFiles/bench_table6_monitors.dir/bench_table6_monitors.cc.o.d"
  "bench_table6_monitors"
  "bench_table6_monitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
