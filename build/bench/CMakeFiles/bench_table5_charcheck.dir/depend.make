# Empty dependencies file for bench_table5_charcheck.
# This may be replaced when dependencies are built.
