file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_charcheck.dir/bench_table5_charcheck.cc.o"
  "CMakeFiles/bench_table5_charcheck.dir/bench_table5_charcheck.cc.o.d"
  "bench_table5_charcheck"
  "bench_table5_charcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_charcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
