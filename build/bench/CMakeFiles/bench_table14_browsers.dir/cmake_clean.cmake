file(REMOVE_RECURSE
  "CMakeFiles/bench_table14_browsers.dir/bench_table14_browsers.cc.o"
  "CMakeFiles/bench_table14_browsers.dir/bench_table14_browsers.cc.o.d"
  "bench_table14_browsers"
  "bench_table14_browsers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_browsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
