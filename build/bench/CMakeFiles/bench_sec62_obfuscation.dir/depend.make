# Empty dependencies file for bench_sec62_obfuscation.
# This may be replaced when dependencies are built.
