file(REMOVE_RECURSE
  "CMakeFiles/bench_sec62_obfuscation.dir/bench_sec62_obfuscation.cc.o"
  "CMakeFiles/bench_sec62_obfuscation.dir/bench_sec62_obfuscation.cc.o.d"
  "bench_sec62_obfuscation"
  "bench_sec62_obfuscation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec62_obfuscation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
