# Empty compiler generated dependencies file for bench_fig3_validity_cdf.
# This may be replaced when dependencies are built.
