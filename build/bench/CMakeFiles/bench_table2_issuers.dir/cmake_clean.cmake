file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_issuers.dir/bench_table2_issuers.cc.o"
  "CMakeFiles/bench_table2_issuers.dir/bench_table2_issuers.cc.o.d"
  "bench_table2_issuers"
  "bench_table2_issuers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_issuers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
