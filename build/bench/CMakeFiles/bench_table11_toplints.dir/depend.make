# Empty dependencies file for bench_table11_toplints.
# This may be replaced when dependencies are built.
