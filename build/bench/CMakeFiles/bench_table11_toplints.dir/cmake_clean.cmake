file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_toplints.dir/bench_table11_toplints.cc.o"
  "CMakeFiles/bench_table11_toplints.dir/bench_table11_toplints.cc.o.d"
  "bench_table11_toplints"
  "bench_table11_toplints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_toplints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
