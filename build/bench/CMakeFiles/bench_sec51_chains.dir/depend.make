# Empty dependencies file for bench_sec51_chains.
# This may be replaced when dependencies are built.
