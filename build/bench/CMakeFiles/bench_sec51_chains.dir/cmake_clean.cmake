file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_chains.dir/bench_sec51_chains.cc.o"
  "CMakeFiles/bench_sec51_chains.dir/bench_sec51_chains.cc.o.d"
  "bench_sec51_chains"
  "bench_sec51_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
