# Empty dependencies file for bench_table4_decoding.
# This may be replaced when dependencies are built.
