file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_decoding.dir/bench_table4_decoding.cc.o"
  "CMakeFiles/bench_table4_decoding.dir/bench_table4_decoding.cc.o.d"
  "bench_table4_decoding"
  "bench_table4_decoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_decoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
