file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_newlints.dir/bench_ablation_newlints.cc.o"
  "CMakeFiles/bench_ablation_newlints.dir/bench_ablation_newlints.cc.o.d"
  "bench_ablation_newlints"
  "bench_ablation_newlints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_newlints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
