# Empty compiler generated dependencies file for bench_ablation_newlints.
# This may be replaced when dependencies are built.
