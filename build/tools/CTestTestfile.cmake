# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_pipeline_smoke "sh" "-c" "/root/repo/build/tools/unicert_gen --defect 3 2>/dev/null | /root/repo/build/tools/unicert_lint; test \$? -eq 2")
set_tests_properties(tool_pipeline_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_inspect_smoke "sh" "-c" "/root/repo/build/tools/unicert_gen 2>/dev/null | /root/repo/build/tools/unicert_inspect --asn1 | grep -q SEQUENCE")
set_tests_properties(tool_inspect_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_lint_list_smoke "sh" "-c" "/root/repo/build/tools/unicert_lint --list | grep -q '95 lints'")
set_tests_properties(tool_lint_list_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
