# Empty compiler generated dependencies file for tool_unicert_inspect.
# This may be replaced when dependencies are built.
