
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/unicert_inspect.cc" "tools/CMakeFiles/tool_unicert_inspect.dir/unicert_inspect.cc.o" "gcc" "tools/CMakeFiles/tool_unicert_inspect.dir/unicert_inspect.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/unicert_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lint/CMakeFiles/unicert_lint.dir/DependInfo.cmake"
  "/root/repo/build/src/threat/CMakeFiles/unicert_threat.dir/DependInfo.cmake"
  "/root/repo/build/src/ctlog/CMakeFiles/unicert_ctlog.dir/DependInfo.cmake"
  "/root/repo/build/src/tlslib/CMakeFiles/unicert_tlslib.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/unicert_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/idna/CMakeFiles/unicert_idna.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/unicert_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/unicert_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/unicode/CMakeFiles/unicert_unicode.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/unicert_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
