file(REMOVE_RECURSE
  "CMakeFiles/tool_unicert_inspect.dir/unicert_inspect.cc.o"
  "CMakeFiles/tool_unicert_inspect.dir/unicert_inspect.cc.o.d"
  "unicert_inspect"
  "unicert_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_unicert_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
