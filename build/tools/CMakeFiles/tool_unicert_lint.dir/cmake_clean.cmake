file(REMOVE_RECURSE
  "CMakeFiles/tool_unicert_lint.dir/unicert_lint.cc.o"
  "CMakeFiles/tool_unicert_lint.dir/unicert_lint.cc.o.d"
  "unicert_lint"
  "unicert_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_unicert_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
