# Empty compiler generated dependencies file for tool_unicert_lint.
# This may be replaced when dependencies are built.
