file(REMOVE_RECURSE
  "CMakeFiles/tool_unicert_gen.dir/unicert_gen.cc.o"
  "CMakeFiles/tool_unicert_gen.dir/unicert_gen.cc.o.d"
  "unicert_gen"
  "unicert_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_unicert_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
