# Empty compiler generated dependencies file for tool_unicert_gen.
# This may be replaced when dependencies are built.
