// ca_compliance_audit: the workflow a CA compliance team (or a root
// program auditor) would run — generate/ingest a certificate corpus,
// lint everything, and report which issuers are producing what kinds
// of noncompliant Unicerts.
//
//   $ ./build/examples/ca_compliance_audit [scale]
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "core/report.h"

using namespace unicert;

int main(int argc, char** argv) {
    double scale = argc > 1 ? std::atof(argv[1]) : 5000.0;
    if (scale <= 0) scale = 5000.0;

    std::printf("== CA compliance audit (corpus scale 1:%.0f) ==\n\n", scale);

    ctlog::CorpusGenerator generator({.seed = 2025, .scale = scale});
    std::vector<ctlog::CorpusCert> corpus = generator.generate();
    std::printf("ingested %zu Unicerts\n", corpus.size());

    core::CompliancePipeline pipeline(corpus);
    std::printf("noncompliant: %zu (%s)\n\n", pipeline.noncompliant_count(),
                core::percent(pipeline.noncompliance_rate(), 2).c_str());

    // Issuers ranked by noncompliance — who needs a ballot reminder?
    std::printf("-- issuers by noncompliant certificates --\n");
    core::TextTable issuers({"Issuer", "Total", "NC", "Rate"});
    for (const core::IssuerRow& row : pipeline.issuer_report(8)) {
        issuers.add_row({row.organization, core::with_commas(row.total),
                         core::with_commas(row.noncompliant),
                         core::percent(row.total ? static_cast<double>(row.noncompliant) /
                                                       static_cast<double>(row.total)
                                                 : 0,
                                       2)});
    }
    std::fputs(issuers.to_string().c_str(), stdout);

    // Which rules fire most? That tells the team where validation is
    // weakest across the ecosystem.
    std::printf("\n-- most-violated rules --\n");
    for (const core::LintRow& row : pipeline.top_lints(8)) {
        std::printf("  %5zu  %s%s\n", row.nc_certs, row.name.c_str(),
                    row.is_new ? "  [new]" : "");
    }

    // Subject variants that could evade blocklist matching (Table 3).
    auto variants = pipeline.subject_variants();
    std::printf("\n-- subject variants that evade naive matching: %zu pairs --\n",
                variants.size());
    size_t shown = 0;
    for (const core::VariantGroup& g : variants) {
        if (shown++ >= 5) break;
        std::printf("  [%s]\n    %s\n    %s\n",
                    core::variant_strategy_name(g.strategy), g.values[0].c_str(),
                    g.values[1].c_str());
    }
    return 0;
}
