// revocation_workflow: operate the CRL substrate end-to-end — issue,
// revoke, publish, check — then demonstrate the Section 5.2(2) CRL
// spoofing attack in which a control character in the distribution
// point URL makes the revocation invisible to a vulnerable client.
//
//   $ ./build/examples/revocation_workflow
#include <cstdio>

#include "asn1/time.h"
#include "tlslib/profile.h"
#include "x509/builder.h"
#include "x509/crl.h"
#include "x509/pem.h"

using namespace unicert;
namespace oids = asn1::oids;

namespace {

x509::Certificate issue(const std::string& host, const std::string& crl_url,
                        Bytes serial, const crypto::SimSigner& ca) {
    x509::Certificate cert;
    cert.version = 2;
    cert.serial = std::move(serial);
    cert.subject = x509::make_dn({x509::make_attribute(oids::common_name(), host)});
    cert.issuer = x509::make_dn({x509::make_attribute(oids::organization_name(), "Revo CA")});
    cert.validity = {asn1::make_time(2025, 1, 1), asn1::make_time(2025, 4, 1)};
    cert.subject_public_key = crypto::SimSigner::from_name(host).public_key();
    cert.extensions.push_back(x509::make_san({x509::dns_name(host)}));
    cert.extensions.push_back(x509::make_crl_distribution_points({{{x509::uri_name(crl_url)}}}));
    x509::sign_certificate(cert, ca);
    return cert;
}

const char* status_str(x509::RevocationStatus s) { return x509::revocation_status_name(s); }

}  // namespace

int main() {
    std::printf("== revocation workflow ==\n\n");

    crypto::SimSigner ca = crypto::SimSigner::from_name("Revo CA");
    const std::string url = "http://crl.revo.example/ca.crl";

    // 1. Issue two certificates pointing at the CA's CRL.
    x509::Certificate good = issue("good.example", url, {0x01}, ca);
    x509::Certificate compromised = issue("stolen.example", url, {0x02}, ca);
    std::printf("issued good.example (serial 01) and stolen.example (serial 02)\n");

    // 2. The key for stolen.example leaks; the CA revokes serial 02 and
    //    publishes a fresh CRL.
    x509::CertificateList crl;
    crl.issuer = x509::make_dn({x509::make_attribute(oids::organization_name(), "Revo CA")});
    crl.this_update = asn1::make_time(2025, 2, 1);
    crl.next_update = asn1::make_time(2025, 3, 1);
    crl.revoked.push_back({{0x02}, asn1::make_time(2025, 1, 20)});
    x509::sign_crl(crl, ca);
    std::printf("CRL signed: %zu revoked serial(s), verifies: %s\n", crl.revoked.size(),
                x509::verify_crl(crl, ca) ? "yes" : "NO");
    std::printf("\n%s", x509::pem_encode("X509 CRL", crl.der).c_str());

    x509::CrlDistributor network;
    network.publish(url, crl);

    // 3. A correct client checks both certificates.
    std::printf("\ncorrect client:\n");
    std::printf("  good.example    -> %s\n", status_str(network.check(good)));
    std::printf("  stolen.example  -> %s\n", status_str(network.check(compromised)));

    // 4. The attack: the compromised CA's issuing pipeline writes the
    //    CRLDP URL with an embedded control byte. The CRL is published
    //    at the *crafted* URL, so diligent clients still find it — but
    //    a PyOpenSSL-style parser rewrites the control byte to '.' and
    //    fetches a URL nobody serves.
    std::string crafted(url);
    crafted.insert(11, 1, '\x01');  // http://crl.\x01revo...
    x509::Certificate sneaky = issue("sneaky.example", crafted, {0x03}, ca);
    x509::CertificateList crl2 = crl;
    crl2.revoked.push_back({{0x03}, asn1::make_time(2025, 1, 25)});
    x509::sign_crl(crl2, ca);
    network.publish(crafted, crl2);

    auto vulnerable = [](const std::string& u) {
        x509::GeneralName gn = x509::uri_name(u);
        auto out = tlslib::parse_general_name(tlslib::Library::kPyOpenSsl, gn,
                                              tlslib::FieldContext::kCrlDp);
        return out.ok ? out.value_utf8 : u;
    };

    std::printf("\nsneaky.example (revoked serial 03, crafted CRLDP URL):\n");
    std::printf("  correct client     -> %s\n", status_str(network.check(sneaky)));
    std::printf("  vulnerable client  -> %s   <-- revocation silently invisible\n",
                status_str(network.check(sneaky, vulnerable)));
    return 0;
}
