// ct_monitor_audit: operate a CT log end-to-end — submit certificates,
// verify SCTs and Merkle inclusion proofs — then audit the five
// monitor profiles for the Section 6.1 concealment weaknesses a domain
// owner should know about.
//
//   $ ./build/examples/ct_monitor_audit victim.example
#include <cstdio>
#include <string>

#include "asn1/time.h"
#include "ctlog/log.h"
#include "ctlog/monitor.h"
#include "threat/scenarios.h"
#include "x509/builder.h"

using namespace unicert;
namespace oids = asn1::oids;

namespace {

x509::Certificate make_leaf(const std::string& host, const crypto::SimSigner& ca) {
    x509::Certificate cert;
    cert.version = 2;
    cert.serial = crypto::sha256_bytes(to_bytes(host));
    cert.serial.resize(8);
    cert.subject = x509::make_dn({x509::make_attribute(oids::common_name(), host)});
    cert.issuer = x509::make_dn({x509::make_attribute(oids::organization_name(), "Audit CA")});
    cert.validity = {asn1::make_time(2025, 1, 1), asn1::make_time(2025, 4, 1)};
    cert.subject_public_key = crypto::SimSigner::from_name(host).public_key();
    cert.extensions.push_back(x509::make_san({x509::dns_name(host)}));
    x509::sign_certificate(cert, ca);
    return cert;
}

}  // namespace

int main(int argc, char** argv) {
    std::string victim = argc > 1 ? argv[1] : "victim.example";
    std::printf("== CT log + monitor audit for %s ==\n\n", victim.c_str());

    // 1. Run a log: submit a handful of certificates, collect SCTs.
    crypto::SimSigner ca = crypto::SimSigner::from_name("Audit CA");
    ctlog::CtLog log("audit-log");
    std::vector<x509::Certificate> certs;
    for (const char* host : {"alpha.example", "beta.example", "gamma.example"}) {
        certs.push_back(make_leaf(host, ca));
        ctlog::Sct sct = log.submit(certs.back(), asn1::make_time(2025, 2, 1));
        std::printf("submitted %-15s sct.timestamp=%lld verified=%s\n", host,
                    static_cast<long long>(sct.timestamp),
                    log.verify_sct(certs.back(), sct) ? "yes" : "NO");
    }

    // 2. Prove inclusion of the first entry against the tree head.
    auto proof = log.tree().audit_proof(0, log.size()).value_or({});
    bool included = ctlog::verify_audit_proof(ctlog::leaf_hash(certs[0].der), 0, log.size(),
                                              proof, log.tree_head());
    std::printf("\nMerkle inclusion proof for entry 0: %s (%zu path nodes)\n",
                included ? "VERIFIED" : "FAILED", proof.size());

    // 3. Audit the monitors: which crafting tricks hide a forged cert
    //    for `victim` from each monitor's owner-facing search?
    std::printf("\n-- monitor concealment audit --\n");
    auto results = threat::run_monitor_misleading(victim);
    std::string current;
    for (const auto& r : results) {
        if (r.monitor != current) {
            current = r.monitor;
            std::printf("%s:\n", r.monitor.c_str());
        }
        std::printf("   %-26s %s\n", r.technique.c_str(),
                    r.concealed ? "CONCEALED from owner" : "surfaced");
    }

    // 4. Show the query-validation differences of Table 6.
    std::printf("\n-- query validation behaviour --\n");
    for (const ctlog::MonitorProfile& profile : ctlog::monitor_profiles()) {
        ctlog::Monitor monitor(profile);
        ctlog::QueryResult deceptive = monitor.query("xn--www-hn0a." + victim);
        std::printf("  %-17s deceptive-IDN query: %s\n", profile.name.c_str(),
                    deceptive.query_accepted ? "accepted (no U-label check)"
                                             : "refused (validated)");
    }
    return 0;
}
