// differential_parsing: feed one crafted Unicert field through all
// nine TLS library profiles and watch them disagree — the Section 5
// experiment in miniature, ending with the hostname-spoof and CRL-
// redirect demonstrations.
//
//   $ ./build/examples/differential_parsing
#include <cstdio>

#include "threat/scenarios.h"
#include "tlslib/differential.h"
#include "tlslib/profile.h"

using namespace unicert;

namespace {

void show_parses(const char* title, const x509::AttributeValue& av) {
    std::printf("-- %s --\n", title);
    for (tlslib::Library lib : tlslib::kAllLibraries) {
        tlslib::ParseOutcome out = tlslib::parse_attribute(lib, av);
        if (out.ok) {
            std::printf("  %-20s -> \"%s\"\n", tlslib::library_name(lib),
                        out.value_utf8.c_str());
        } else {
            std::printf("  %-20s -> ERROR: %s\n", tlslib::library_name(lib),
                        out.error.c_str());
        }
    }
    std::printf("\n");
}

}  // namespace

int main() {
    std::printf("== differential Unicert parsing across 9 TLS libraries ==\n\n");

    // Case 1: UTF-8 bytes inside a PrintableString (a Table 1 T3 case).
    x509::AttributeValue printable;
    printable.type = asn1::oids::organization_name();
    printable.string_type = asn1::StringType::kPrintableString;
    printable.value_bytes = to_bytes("Caf\xC3\xA9 Croissant");
    show_parses("PrintableString carrying UTF-8 bytes (\"Café Croissant\")", printable);

    // Case 2: the BMPString hostname spoof of Section 5.1 — UCS-2 CJK
    // characters whose raw bytes spell an ASCII hostname.
    x509::AttributeValue bmp;
    bmp.type = asn1::oids::common_name();
    bmp.string_type = asn1::StringType::kBmpString;
    bmp.value_bytes = {0x67, 0x69, 0x74, 0x68, 0x75, 0x62, 0x2E, 0x63, 0x6E};
    show_parses("BMPString whose bytes spell \"github.cn\"", bmp);

    // Case 3: a NUL inside a UTF8String CN.
    x509::AttributeValue nul;
    nul.type = asn1::oids::common_name();
    nul.string_type = asn1::StringType::kUtf8String;
    nul.value_bytes = to_bytes(std::string("bank.example\0.evil", 18));
    show_parses("UTF8String CN with embedded NUL", nul);

    // Run the Section 3.2 inference on one scenario to show how the
    // decoding matrix of Table 4 is derived.
    std::printf("-- inferred decoding for PrintableString in DN --\n");
    tlslib::DifferentialRunner runner;
    for (tlslib::Library lib : tlslib::kAllLibraries) {
        auto inferred = runner.infer(
            lib, {asn1::StringType::kPrintableString, tlslib::FieldContext::kDnName});
        const char* method = inferred.method ? unicode::encoding_name(*inferred.method) : "?";
        std::printf("  %-20s method=%-10s modified=%s class=%s\n",
                    tlslib::library_name(lib), method, inferred.modified ? "yes" : "no",
                    tlslib::decode_class_symbol(tlslib::classify_decoding(
                        asn1::StringType::kPrintableString, inferred)));
    }

    // Finish with the two concrete exploit demos.
    std::printf("\n-- CRL spoof via PyOpenSSL control-character rewriting --\n");
    threat::CrlSpoofResult crl = threat::run_crl_spoof();
    std::printf("  CA signed   : http://ssl\\x01test.com/revoked.crl\n");
    std::printf("  client sees : %s  (%s)\n", crl.parsed_url.c_str(),
                crl.redirected ? "revocation REDIRECTED" : "no redirect");

    std::printf("\n-- SAN subfield forgery --\n");
    for (const threat::SanForgeryResult& r : threat::run_san_forgery()) {
        std::printf("  %-20s %-7s %s\n", r.library.c_str(), r.forged ? "FORGED" : "safe",
                    r.rendered.c_str());
    }
    return 0;
}
