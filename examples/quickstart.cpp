// quickstart: build an internationalized certificate, sign it, round-
// trip it through DER, and lint it against the 95-rule registry.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "asn1/time.h"
#include "lint/lint.h"
#include "x509/builder.h"
#include "x509/dn_text.h"
#include "x509/parser.h"

using namespace unicert;
namespace oids = asn1::oids;

int main() {
    std::printf("== unicert quickstart ==\n\n");

    // 1. Build a Unicert: a certificate with internationalized content.
    x509::Certificate cert;
    cert.version = 2;
    cert.serial = {0x4A, 0x0B, 0x17};
    cert.issuer = x509::make_dn({
        x509::make_attribute(oids::country_name(), "DE", asn1::StringType::kPrintableString),
        x509::make_attribute(oids::organization_name(), "Beispiel CA GmbH"),
        x509::make_attribute(oids::common_name(), "Beispiel CA R3"),
    });
    cert.subject = x509::make_dn({
        x509::make_attribute(oids::country_name(), "DE", asn1::StringType::kPrintableString),
        x509::make_attribute(oids::organization_name(), "Müller Straßenbau GmbH"),
        x509::make_attribute(oids::locality_name(), "München"),
        x509::make_attribute(oids::common_name(), "xn--mller-kva.example"),
    });
    cert.validity = {asn1::make_time(2024, 6, 1), asn1::make_time(2024, 9, 1)};
    cert.subject_public_key = crypto::SimSigner::from_name("müller.example").public_key();
    cert.extensions.push_back(x509::make_san({
        x509::dns_name("xn--mller-kva.example"),  // A-label for "müller"
        x509::dns_name("www.xn--mller-kva.example"),
    }));

    // 2. Sign with the issuing CA's key and serialize to DER.
    crypto::SimSigner ca_key = crypto::SimSigner::from_name("Beispiel CA GmbH");
    Bytes der = x509::sign_certificate(cert, ca_key);
    std::printf("encoded certificate: %zu bytes of DER\n", der.size());
    std::printf("fingerprint        : %s\n", hex_encode(cert.fingerprint()).c_str());

    // 3. Parse it back and inspect the identity fields.
    auto parsed = x509::parse_certificate(der);
    if (!parsed.ok()) {
        std::printf("parse failed: %s\n", parsed.error().message.c_str());
        return 1;
    }
    std::printf("subject (RFC 4514) : %s\n",
                x509::format_dn(parsed->subject, x509::DnDialect::kRfc4514).c_str());
    std::printf("SAN                : %s\n",
                x509::format_general_names(parsed->subject_alt_names()).c_str());
    std::printf("signature valid    : %s\n",
                x509::verify_signature(parsed.value(), ca_key) ? "yes" : "no");

    // 4. Lint against the full registry (this cert is compliant).
    lint::CertReport report = lint::run_lints(parsed.value());
    std::printf("\nlint findings      : %zu\n", report.findings.size());

    // 5. Now break it the way real CAs do (Table 1's noncompliance
    //    types) and lint again.
    x509::Certificate bad = parsed.value();
    bad.subject = x509::make_dn({
        x509::make_attribute(oids::organization_name(), "Störi AG",
                             asn1::StringType::kTeletexString),    // invalid encoding
        x509::make_attribute(oids::common_name(), std::string("ev\0il.example", 13)),  // NUL
    });
    x509::sign_certificate(bad, ca_key);

    lint::CertReport bad_report = lint::run_lints(bad);
    std::printf("after corruption   : %zu findings\n", bad_report.findings.size());
    for (const lint::Finding& f : bad_report.findings) {
        std::printf("  [%-7s] %-50s %s\n", lint::severity_name(f.lint->severity),
                    f.lint->name.c_str(), f.detail.c_str());
    }
    return 0;
}
